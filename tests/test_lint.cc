/**
 * @file
 * Tests for caba-lint (tools/lint): every rule must fire on its
 * fixture with the expected count, annotations and whitelists must
 * suppress, the JSON report must be well-formed, and the real source
 * tree must lint clean against the committed (empty) baseline.
 *
 * Fixture files live in tools/lint/fixtures/ and are linted under
 * fake src/ paths so the src-only rules (iteration-order,
 * check-discipline, stat-hygiene) apply to them.
 */
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "lint.h"
#include "mini_json.h"

#ifndef CABA_LINT_SOURCE_ROOT
#error "CABA_LINT_SOURCE_ROOT must be defined by the build"
#endif
#ifndef CABA_LINT_FIXTURE_DIR
#error "CABA_LINT_FIXTURE_DIR must be defined by the build"
#endif

namespace {

using caba::lint::Finding;
using caba::lint::SourceFile;

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << "cannot open " << path;
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/** Loads a fixture and poses it as a file under src/common/ (a mapped
 *  layer, so the layering rule stays quiet about the pose itself). */
SourceFile
fixture(const std::string &name)
{
    SourceFile f;
    f.path = "src/common/" + name;
    f.text = slurp(std::string(CABA_LINT_FIXTURE_DIR) + "/" + name);
    return f;
}

std::map<std::string, int>
countByRule(const std::vector<Finding> &findings)
{
    std::map<std::string, int> counts;
    for (const Finding &f : findings)
        ++counts[f.rule];
    return counts;
}

TEST(Lint, DeterminismClockAndRandSources)
{
    auto findings = caba::lint::run({fixture("det_clocks.cc")});
    EXPECT_EQ(findings.size(), 7u);
    for (const Finding &f : findings) {
        EXPECT_EQ(f.rule, "determinism");
        EXPECT_EQ(f.file, "src/common/det_clocks.cc");
        EXPECT_GT(f.line, 0);
    }
}

TEST(Lint, DeterminismPointerSortPredicates)
{
    auto findings = caba::lint::run({fixture("det_ptr_sort.cc")});
    ASSERT_EQ(findings.size(), 2u);
    for (const Finding &f : findings) {
        EXPECT_EQ(f.rule, "determinism");
        EXPECT_NE(f.message.find("pointer"), std::string::npos)
            << f.message;
    }
}

TEST(Lint, DeterminismWhitelistSuppresses)
{
    // The same content under a whitelisted path produces no findings.
    SourceFile f = fixture("det_clocks.cc");
    f.path = "src/common/self_profile.cc";
    EXPECT_TRUE(caba::lint::run({f}).empty());
}

TEST(Lint, IterationOrderUnorderedRangeFor)
{
    auto findings = caba::lint::run({fixture("iter_unordered.cc")});
    ASSERT_EQ(findings.size(), 3u);
    for (const Finding &f : findings)
        EXPECT_EQ(f.rule, "iteration-order");
    // Annotated loops (lines 39 and 43) must not appear.
    for (const Finding &f : findings) {
        EXPECT_NE(f.line, 39);
        EXPECT_NE(f.line, 43);
    }
}

TEST(Lint, IterationOrderOnlyEnforcedInSrc)
{
    // tests/ may iterate unordered containers freely.
    SourceFile f = fixture("iter_unordered.cc");
    f.path = "tests/iter_unordered.cc";
    EXPECT_TRUE(caba::lint::run({f}).empty());
}

TEST(Lint, EnvAccessOutsideRegistry)
{
    auto findings = caba::lint::run({fixture("env_direct.cc")});
    ASSERT_EQ(findings.size(), 2u);
    for (const Finding &f : findings)
        EXPECT_EQ(f.rule, "env-access");
}

TEST(Lint, EnvAccessAllowedInRegistry)
{
    SourceFile f = fixture("env_direct.cc");
    f.path = "src/common/env.cc";
    EXPECT_TRUE(caba::lint::run({f}).empty());
}

TEST(Lint, CheckDisciplineBareAssert)
{
    auto findings = caba::lint::run({fixture("assert_bare.cc")});
    ASSERT_EQ(findings.size(), 2u);
    for (const Finding &f : findings) {
        EXPECT_EQ(f.rule, "check-discipline");
        // lint: not-env CABA_CHECK is the assertion macro, not a knob
        EXPECT_NE(f.message.find("CABA_CHECK"), std::string::npos);
    }
}

TEST(Lint, StatHygiene)
{
    auto findings = caba::lint::run({fixture("stats_bad.cc")});
    ASSERT_EQ(findings.size(), 4u);
    for (const Finding &f : findings)
        EXPECT_EQ(f.rule, "stat-hygiene");
}

TEST(Lint, ExperimentRegistryCaseAndDuplicates)
{
    auto findings = caba::lint::run({fixture("exp_registry.cc")});
    ASSERT_EQ(findings.size(), 2u);
    for (const Finding &f : findings)
        EXPECT_EQ(f.rule, "experiment-registry");
    EXPECT_NE(findings[0].message.find("snake_case"), std::string::npos)
        << findings[0].message;
    EXPECT_NE(findings[1].message.find("duplicate"), std::string::npos)
        << findings[1].message;
}

TEST(Lint, ExperimentRegistryCrossFileDuplicate)
{
    // The uniqueness check spans files, and the finding lands on the
    // lexicographically later file regardless of input order.
    SourceFile a{"bench/a.cc",
                 "CABA_REGISTER_EXPERIMENT(shared_name)\n{\n}\n"};
    SourceFile b{"bench/b.cc",
                 "CABA_REGISTER_EXPERIMENT(shared_name)\n{\n}\n"};
    for (const auto &files :
         {std::vector<SourceFile>{a, b}, std::vector<SourceFile>{b, a}}) {
        auto findings = caba::lint::run(files);
        ASSERT_EQ(findings.size(), 1u);
        EXPECT_EQ(findings[0].rule, "experiment-registry");
        EXPECT_EQ(findings[0].file, "bench/b.cc");
        EXPECT_NE(findings[0].message.find("bench/a.cc"),
                  std::string::npos)
            << findings[0].message;
    }
}

TEST(Lint, CleanFixtureHasNoFindings)
{
    EXPECT_TRUE(caba::lint::run({fixture("clean.cc")}).empty());
}

TEST(Lint, FindingsAreSortedAndStable)
{
    std::vector<SourceFile> files = {fixture("stats_bad.cc"),
                                     fixture("det_clocks.cc")};
    auto a = caba::lint::run(files);
    std::swap(files[0], files[1]);
    auto b = caba::lint::run(files);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].rule, b[i].rule);
        EXPECT_EQ(a[i].file, b[i].file);
        EXPECT_EQ(a[i].line, b[i].line);
        EXPECT_EQ(a[i].message, b[i].message);
    }
    for (std::size_t i = 1; i < a.size(); ++i)
        EXPECT_LE(a[i - 1].file, a[i].file);
}

TEST(Lint, JsonReportShape)
{
    std::vector<SourceFile> files;
    for (const char *name :
         {"det_clocks.cc", "det_ptr_sort.cc", "iter_unordered.cc",
          "env_direct.cc", "assert_bare.cc", "stats_bad.cc",
          "exp_registry.cc", "clean.cc"})
        files.push_back(fixture(name));
    auto findings = caba::lint::run(files);
    auto by_rule = countByRule(findings);
    EXPECT_EQ(by_rule["determinism"], 9);
    EXPECT_EQ(by_rule["iteration-order"], 3);
    EXPECT_EQ(by_rule["env-access"], 2);
    EXPECT_EQ(by_rule["check-discipline"], 2);
    EXPECT_EQ(by_rule["stat-hygiene"], 4);
    EXPECT_EQ(by_rule["experiment-registry"], 2);

    const std::string json = caba::lint::toJson(findings, {});
    minijson::Value doc;
    ASSERT_TRUE(minijson::parse(json, &doc)) << json;
    ASSERT_TRUE(doc.isObject());
    ASSERT_NE(doc.find("schema"), nullptr);
    EXPECT_EQ(doc.find("schema")->string, "caba-lint-v1");
    const minijson::Value *counts = doc.find("counts");
    ASSERT_NE(counts, nullptr);
    auto count_of = [&](const char *key) {
        const minijson::Value *v = counts->find(key);
        return v && v->isNumber() ? static_cast<int>(v->number) : -1;
    };
    EXPECT_EQ(count_of("determinism"), 9);
    EXPECT_EQ(count_of("iteration-order"), 3);
    EXPECT_EQ(count_of("env-access"), 2);
    EXPECT_EQ(count_of("check-discipline"), 2);
    EXPECT_EQ(count_of("stat-hygiene"), 4);
    EXPECT_EQ(count_of("experiment-registry"), 2);
    EXPECT_EQ(count_of("total"), 22);
    EXPECT_EQ(count_of("baselined"), 0);
    const minijson::Value *arr = doc.find("findings");
    ASSERT_NE(arr, nullptr);
    ASSERT_TRUE(arr->isArray());
    ASSERT_EQ(arr->array.size(), findings.size());
    for (std::size_t i = 0; i < arr->array.size(); ++i) {
        const minijson::Value &e = arr->array[i];
        ASSERT_TRUE(e.isObject());
        EXPECT_EQ(e.find("rule")->string, findings[i].rule);
        EXPECT_EQ(e.find("file")->string, findings[i].file);
        EXPECT_EQ(static_cast<int>(e.find("line")->number),
                  findings[i].line);
        EXPECT_EQ(e.find("message")->string, findings[i].message);
        EXPECT_FALSE(e.find("baselined")->boolean);
    }
}

TEST(Lint, BaselineRoundTrip)
{
    auto findings = caba::lint::run({fixture("env_direct.cc")});
    ASSERT_EQ(findings.size(), 2u);
    // A report can be fed back as a baseline; all findings then match
    // even if line numbers drift.
    const std::string json = caba::lint::toJson(findings, {});
    std::vector<Finding> baseline;
    std::string err;
    ASSERT_TRUE(caba::lint::parseBaseline(json, &baseline, &err)) << err;
    ASSERT_EQ(baseline.size(), 2u);
    for (Finding &f : baseline)
        f.line += 100; // lines are not part of the match key
    std::vector<Finding> fresh, matched;
    caba::lint::applyBaseline(findings, baseline, &fresh, &matched);
    EXPECT_TRUE(fresh.empty());
    EXPECT_EQ(matched.size(), 2u);
}

TEST(Lint, RuleNamesCoverAllRules)
{
    const auto &names = caba::lint::ruleNames();
    EXPECT_EQ(names.size(), 11u);
    for (const char *expect :
         {"include-cycle", "layering", "env-drift", "stat-drift",
          "lock-discipline"})
        EXPECT_NE(std::find(names.begin(), names.end(), expect),
                  names.end())
            << expect;
}

TEST(Lint, IncludeCycleDetected)
{
    SourceFile a{"src/common/a.h", "#include \"common/b.h\"\n"};
    SourceFile b{"src/common/b.h", "#include \"common/c.h\"\n"};
    SourceFile c{"src/common/c.h", "#include \"common/a.h\"\n"};
    caba::lint::Options opts;
    opts.rules = {"include-cycle"};
    auto findings = caba::lint::run({a, b, c}, opts);
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, "include-cycle");
    // Anchored at the lexicographically smallest member's include.
    EXPECT_EQ(findings[0].file, "src/common/a.h");
    EXPECT_EQ(findings[0].line, 1);
    for (const char *member :
         {"src/common/a.h", "src/common/b.h", "src/common/c.h"})
        EXPECT_NE(findings[0].message.find(member), std::string::npos)
            << findings[0].message;

    // Acyclic control: breaking the back edge clears the finding.
    c.text = "";
    EXPECT_TRUE(caba::lint::run({a, b, c}, opts).empty());
}

TEST(Lint, IncludeSelfCycle)
{
    SourceFile s{"src/common/s.h", "#include \"common/s.h\"\n"};
    caba::lint::Options opts;
    opts.rules = {"include-cycle"};
    auto findings = caba::lint::run({s}, opts);
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_NE(findings[0].message.find("1 file(s)"), std::string::npos);
}

TEST(Lint, LayeringViolationDirections)
{
    // common(0) -> mem(2) and mem(2) -> gpu(3) point up: two findings.
    // gpu(3) -> common(0) points down and is fine.
    SourceFile common_up{"src/common/up.h", "#include \"mem/req.h\"\n"};
    SourceFile mem_up{"src/mem/req.h", "#include \"gpu/sys.h\"\n"};
    SourceFile gpu_down{"src/gpu/sys.h", "#include \"common/up.h\"\n"};
    caba::lint::Options opts;
    opts.rules = {"layering"};
    auto findings =
        caba::lint::run({common_up, mem_up, gpu_down}, opts);
    ASSERT_EQ(findings.size(), 2u);
    EXPECT_EQ(findings[0].file, "src/common/up.h");
    EXPECT_EQ(findings[1].file, "src/mem/req.h");
    for (const Finding &f : findings) {
        EXPECT_EQ(f.rule, "layering");
        EXPECT_NE(f.message.find("never up"), std::string::npos)
            << f.message;
    }

    // Sideways (sim(3) -> gpu(3)) is legal.
    SourceFile side{"src/sim/core.h", "#include \"gpu/sys.h\"\n"};
    SourceFile gpu_plain{"src/gpu/sys.h", ""};
    EXPECT_TRUE(caba::lint::run({side, gpu_plain}, opts).empty());
}

TEST(Lint, LayeringUnmappedSubdirIsAnError)
{
    SourceFile f{"src/newdir/x.h", ""};
    caba::lint::Options opts;
    opts.rules = {"layering"};
    auto findings = caba::lint::run({f}, opts);
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_NE(findings[0].message.find("not in the layer map"),
              std::string::npos)
        << findings[0].message;
}

TEST(Lint, EnvDriftUnregisteredLiteral)
{
    SourceFile reg{"src/common/env.cc",
                   "const char *a = \"CABA_GOOD\";\n"};
    SourceFile use{"src/gpu/use.cc",
                   "const char *u = \"CABA_GOOD\";\n"
                   "const char *v = \"CABA_BOGUS\";\n"
                   "// lint: not-env a macro name, not a knob\n"
                   "const char *w = \"CABA_NOTVAR\";\n"};
    caba::lint::Options opts;
    opts.rules = {"env-drift"};
    auto findings = caba::lint::run({reg, use}, opts);
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, "env-drift");
    EXPECT_EQ(findings[0].file, "src/gpu/use.cc");
    EXPECT_EQ(findings[0].line, 2);
    // lint: not-env the seeded fixture name, not a real knob
    EXPECT_NE(findings[0].message.find("CABA_BOGUS"), std::string::npos);
}

TEST(Lint, EnvDriftReadmeDirection)
{
    SourceFile reg{"src/common/env.cc",
                   "const char *a = \"CABA_GOOD\";\n"
                   "const char *b = \"CABA_UNDOC\";\n"};
    caba::lint::Options opts;
    opts.rules = {"env-drift"};
    opts.readme_text = "docs mention CABA_GOOD only";
    auto findings = caba::lint::run({reg}, opts);
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].file, "src/common/env.cc");
    EXPECT_EQ(findings[0].line, 2);
    // lint: not-env the seeded fixture name, not a real knob
    EXPECT_NE(findings[0].message.find("CABA_UNDOC"), std::string::npos);
    EXPECT_NE(findings[0].message.find("README"), std::string::npos);

    opts.readme_text = "CABA_GOOD and CABA_UNDOC";
    EXPECT_TRUE(caba::lint::run({reg}, opts).empty());
}

TEST(Lint, EnvDriftSkippedWithoutRegistry)
{
    // Fixture-style runs without src/common/env.cc can't know the
    // registry; the rule must stay quiet rather than flag everything.
    SourceFile f{"src/gpu/use.cc", "const char *v = \"CABA_ANYTHING\";\n"};
    caba::lint::Options opts;
    opts.rules = {"env-drift"};
    EXPECT_TRUE(caba::lint::run({f}, opts).empty());
}

TEST(Lint, StatDriftOrphanRead)
{
    SourceFile prod{"src/gpu/prod.cc",
                    "void f(S &s, S &o) {\n"
                    "    s.add(\"hits\", 1);\n"
                    "    s.mergePrefixed(o, \"l1_\");\n"
                    "}\n"};
    SourceFile cons{"src/caba/cons.cc",
                    "void g(S &s) {\n"
                    "    (void)s.get(\"hits\");\n"
                    "    (void)s.get(\"l1_hits\");\n"
                    "    (void)s.get(\"misses\");\n"
                    "    // lint: stat-external deliberately absent\n"
                    "    (void)s.get(\"gone\");\n"
                    "}\n"};
    caba::lint::Options opts;
    opts.rules = {"stat-drift"};
    auto findings = caba::lint::run({prod, cons}, opts);
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, "stat-drift");
    EXPECT_EQ(findings[0].file, "src/caba/cons.cc");
    EXPECT_EQ(findings[0].line, 4);
    EXPECT_NE(findings[0].message.find("misses"), std::string::npos);
}

TEST(Lint, StatDriftRatioArgumentsAreReads)
{
    SourceFile prod{"src/gpu/prod.cc", "void f(S &s) { s.add(\"num\", 1); }\n"};
    SourceFile cons{"src/caba/cons.cc",
                    "double g(S &s) { return s.ratio(\"num\", \"den\"); }\n"};
    caba::lint::Options opts;
    opts.rules = {"stat-drift"};
    auto findings = caba::lint::run({prod, cons}, opts);
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_NE(findings[0].message.find("den"), std::string::npos);
}

TEST(Lint, StatDriftProducerWrapperAndNameTable)
{
    SourceFile wrap{"src/harness/w.cc",
                    "// lint: stat-producer registry wrapper\n"
                    "void bump(const char *n) { stats.add(n, 1); }\n"
                    "void h() { bump(\"via_wrapper\"); }\n"
                    "const char *const kNames[] = {\"tbl_a\", \"tbl_b\"};\n"};
    SourceFile cons{"src/caba/r.cc",
                    "void g(S &s) {\n"
                    "    (void)s.get(\"via_wrapper\");\n"
                    "    (void)s.get(\"tbl_a\");\n"
                    "    (void)s.get(\"tbl_b\");\n"
                    "}\n"};
    caba::lint::Options opts;
    opts.rules = {"stat-drift"};
    EXPECT_TRUE(caba::lint::run({wrap, cons}, opts).empty());
}

TEST(Lint, LockDisciplineNakedLockAndSuppression)
{
    auto findings = caba::lint::run({fixture("lock_naked.cc")});
    ASSERT_EQ(findings.size(), 2u);
    for (const Finding &f : findings) {
        EXPECT_EQ(f.rule, "lock-discipline");
        EXPECT_NE(f.message.find("mu."), std::string::npos) << f.message;
    }
    // The annotated pair (lines 20/21) is suppressed; only bad() fires.
    EXPECT_EQ(findings[0].line, 12);
    EXPECT_EQ(findings[1].line, 13);
}

TEST(Lint, LockDisciplineSeesMutexAcrossFiles)
{
    // The declaration lives in one file, the naked lock in another: the
    // cross-TU index is what makes the rule fire.
    SourceFile decl{"src/common/state.h", "std::mutex service_mu;\n"};
    SourceFile use{"src/gpu/use.cc", "void f() { service_mu.lock(); }\n"};
    caba::lint::Options opts;
    opts.rules = {"lock-discipline"};
    auto findings = caba::lint::run({decl, use}, opts);
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].file, "src/gpu/use.cc");
}

TEST(Lint, RuleFilterRestrictsOutput)
{
    caba::lint::Options opts;
    opts.rules = {"determinism"};
    auto findings = caba::lint::run(
        {fixture("det_clocks.cc"), fixture("stats_bad.cc")}, opts);
    EXPECT_EQ(findings.size(), 7u);
    for (const Finding &f : findings)
        EXPECT_EQ(f.rule, "determinism");
}

TEST(Lint, ParallelMatchesSerialByteForByte)
{
    std::vector<SourceFile> files;
    std::string err;
    ASSERT_TRUE(caba::lint::collectTree(CABA_LINT_SOURCE_ROOT, &files, &err))
        << err;
    caba::lint::Options opts;
    opts.jobs = 1;
    const std::string serial = caba::lint::toText(caba::lint::run(files, opts));
    for (int jobs : {2, 3, 8}) {
        opts.jobs = jobs;
        EXPECT_EQ(serial, caba::lint::toText(caba::lint::run(files, opts)))
            << "findings differ at jobs=" << jobs;
    }
}

TEST(Lint, SourceTreeIsClean)
{
    std::vector<Finding> findings;
    std::string err;
    ASSERT_TRUE(caba::lint::runTree(CABA_LINT_SOURCE_ROOT, &findings, &err))
        << err;

    std::vector<Finding> baseline;
    const std::string baseline_path =
        std::string(CABA_LINT_SOURCE_ROOT) + "/tools/lint/baseline.json";
    ASSERT_TRUE(
        caba::lint::parseBaseline(slurp(baseline_path), &baseline, &err))
        << err;
    EXPECT_TRUE(baseline.empty())
        << "the committed baseline should stay empty; fix findings "
           "instead of baselining them";

    std::vector<Finding> fresh, matched;
    caba::lint::applyBaseline(findings, baseline, &fresh, &matched);
    EXPECT_TRUE(fresh.empty()) << caba::lint::toText(fresh);
}

} // namespace
