/**
 * @file
 * Whole-GPU behaviour: determinism (bit-identical cycle counts across
 * runs), bandwidth-scaling monotonicity, drain semantics, multi-SM
 * partition routing, and the occupancy-driven launch path.
 */
#include <gtest/gtest.h>

#include "gpu/gpu_system.h"
#include "harness/runner.h"

namespace caba {
namespace {

AppDescriptor
tinyApp()
{
    AppDescriptor app = findApp("CONS");
    app.iterations = 8;
    app.footprint = 2ull << 20;
    return app;
}

RunResult
runSystem(const AppDescriptor &app, const DesignConfig &design,
          GpuConfig cfg = {}, int warps = 12)
{
    Workload wl(app);
    wl.bindGrid(warps * cfg.num_sms);
    GpuSystem gpu(cfg, design, wl.lineGenerator());
    gpu.launch(&wl, warps);
    return gpu.run();
}

TEST(GpuSystem, DeterministicAcrossRuns)
{
    const AppDescriptor app = tinyApp();
    const RunResult a = runSystem(app, DesignConfig::caba());
    const RunResult b = runSystem(app, DesignConfig::caba());
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.stats.get("dram_bursts"), b.stats.get("dram_bursts"));
    EXPECT_EQ(a.stats.get("sm_assist_instructions"),
              b.stats.get("sm_assist_instructions"));
}

TEST(GpuSystem, MoreBandwidthNeverHurtsMemoryBoundWork)
{
    const AppDescriptor app = findApp("CONS");
    Cycle prev = ~Cycle{0};
    for (double bw : {0.5, 1.0, 2.0}) {
        GpuConfig cfg;
        cfg.bw_scale = bw;
        const RunResult r = runSystem(app, DesignConfig::base(), cfg, 24);
        EXPECT_LT(r.cycles, prev);
        prev = r.cycles;
    }
}

TEST(GpuSystem, AllPartitionsSeeTraffic)
{
    const RunResult r = runSystem(tinyApp(), DesignConfig::base());
    // 256B channel interleave spreads a streaming footprint over every
    // partition; if routing were broken, loads_in would concentrate.
    EXPECT_GT(r.stats.get("part_loads_in"), 0u);
    EXPECT_EQ(r.stats.get("part_loads_in"), r.stats.get("part_replies"));
}

TEST(GpuSystem, DoneImpliesFullyDrained)
{
    GpuConfig cfg;
    Workload wl(tinyApp());
    wl.bindGrid(12 * cfg.num_sms);
    GpuSystem gpu(cfg, DesignConfig::caba(), wl.lineGenerator());
    gpu.launch(&wl, 12);
    while (!gpu.done())
        gpu.step();
    // Stepping a finished system is a no-op for every counter we track.
    const Cycle cycles_at_done = gpu.now();
    gpu.step();
    EXPECT_TRUE(gpu.done());
    EXPECT_EQ(gpu.now(), cycles_at_done + 1);
}

TEST(GpuSystem, SmallerGpuStillCorrect)
{
    GpuConfig cfg;
    cfg.num_sms = 2;
    cfg.num_partitions = 2;
    const RunResult r =
        runSystem(tinyApp(), DesignConfig::caba(), cfg, 8);
    EXPECT_GT(r.cycles, 0u);
    EXPECT_GT(r.compression_ratio, 1.0);
}

TEST(GpuSystem, OccupancyLimitsLaunchedWarps)
{
    // RAY: 40 regs/thread, 128 threads/block -> 6 blocks -> 24 warps.
    Workload wl(findApp("RAY"));
    EXPECT_EQ(wl.warpsPerSm(0), 24);
    // CABA's 2 assist regs/thread still fit (42 regs -> 6 blocks).
    EXPECT_EQ(wl.warpsPerSm(2), 24);
}

TEST(GpuSystem, VerifyModeCatchesNothingOnHealthyCodecs)
{
    GpuConfig cfg;
    cfg.verify_data = true;     // panics on any round-trip mismatch
    const RunResult r =
        runSystem(tinyApp(), DesignConfig::caba(Algorithm::BestOfAll),
                  cfg);
    EXPECT_GT(r.stats.get("model_lines_compressed"), 0u);
}

} // namespace
} // namespace caba
