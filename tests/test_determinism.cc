/**
 * @file
 * The run-loop invariants: quiescence skipping and the event-driven
 * scheduler in GpuSystem::run() must both be invisible. For one small
 * app across all five Section 6 design points, every combination of
 * {event-driven, walk-everything} x {fast-forward, ticked} must agree
 * on EVERY observable of RunResult — cycles, instructions, the Figure 1
 * breakdown, every merged counter and gauge, every histogram, every
 * derived double, and the whole sampled timeline. Run-to-run
 * repeatability rides along.
 */
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "gpu/gpu_system.h"
#include "harness/runner.h"

namespace caba {
namespace {

AppDescriptor
tinyApp()
{
    AppDescriptor app = findApp("CONS");
    app.iterations = 8;
    app.footprint = 2ull << 20;
    return app;
}

RunResult
runSystem(const DesignConfig &design, bool fast_forward,
          bool event_driven = true)
{
    GpuConfig cfg;
    cfg.fast_forward = fast_forward;
    cfg.event_driven = event_driven;
    // A short interval lands samples inside skipped spans.
    cfg.sample_interval = 512;
    const AppDescriptor app = tinyApp();
    Workload wl(app);
    const int warps = 12;
    wl.bindGrid(warps * cfg.num_sms);
    GpuSystem gpu(cfg, design, wl.lineGenerator());
    gpu.launch(&wl, warps);
    return gpu.run();
}

/** Field-by-field equality over everything RunResult exposes. */
void
expectIdentical(const RunResult &a, const RunResult &b)
{
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.ipc, b.ipc);
    EXPECT_EQ(a.bw_utilization, b.bw_utilization);
    EXPECT_EQ(a.compression_ratio, b.compression_ratio);
    EXPECT_EQ(a.md_hit_rate, b.md_hit_rate);

    EXPECT_EQ(a.breakdown.active, b.breakdown.active);
    EXPECT_EQ(a.breakdown.mem_stall, b.breakdown.mem_stall);
    EXPECT_EQ(a.breakdown.comp_stall, b.breakdown.comp_stall);
    EXPECT_EQ(a.breakdown.data_stall, b.breakdown.data_stall);
    EXPECT_EQ(a.breakdown.idle, b.breakdown.idle);

    EXPECT_EQ(a.energy.total, b.energy.total);
    EXPECT_EQ(a.energy.core, b.energy.core);
    EXPECT_EQ(a.energy.dram, b.energy.dram);

    // Every counter and gauge, by name.
    EXPECT_EQ(a.stats.all(), b.stats.all());
    // Every histogram (Distribution has full operator==).
    EXPECT_EQ(a.stats.allDists().size(), b.stats.allDists().size());
    for (const auto &[name, dist] : a.stats.allDists()) {
        const Distribution *other = b.stats.findDist(name);
        ASSERT_NE(other, nullptr) << name;
        EXPECT_TRUE(dist == *other) << name;
    }

    // The timeline samples, including ones emitted mid-skip.
    ASSERT_EQ(a.timeline.size(), b.timeline.size());
    for (std::size_t i = 0; i < a.timeline.size(); ++i) {
        EXPECT_EQ(a.timeline[i].cycle, b.timeline[i].cycle) << i;
        EXPECT_EQ(a.timeline[i].instructions, b.timeline[i].instructions)
            << i;
        EXPECT_EQ(a.timeline[i].dram_bursts, b.timeline[i].dram_bursts)
            << i;
    }
}

struct NamedDesign
{
    const char *name;
    DesignConfig design;
};

std::vector<NamedDesign>
allDesigns()
{
    return {
        {"Base", DesignConfig::base()},
        {"HW-BDI-Mem", DesignConfig::hwMem()},
        {"HW-BDI", DesignConfig::hw()},
        {"CABA-BDI", DesignConfig::caba()},
        {"Ideal-BDI", DesignConfig::ideal()},
    };
}

TEST(Determinism, FastForwardIsBitIdenticalAcrossAllDesigns)
{
    for (const NamedDesign &d : allDesigns()) {
        SCOPED_TRACE(d.name);
        const RunResult ff = runSystem(d.design, true);
        const RunResult ticked = runSystem(d.design, false);
        expectIdentical(ff, ticked);
    }
}

TEST(Determinism, EventDrivenIsBitIdenticalAcrossAllDesigns)
{
    // The four loop variants — {event-driven, walk-everything} x
    // {fast-forward, ticked} — must agree on every observable.
    for (const NamedDesign &d : allDesigns()) {
        SCOPED_TRACE(d.name);
        const RunResult event_ff = runSystem(d.design, true, true);
        const RunResult event_ticked = runSystem(d.design, false, true);
        const RunResult legacy_ff = runSystem(d.design, true, false);
        const RunResult legacy_ticked = runSystem(d.design, false, false);
        expectIdentical(event_ff, legacy_ff);
        expectIdentical(event_ff, event_ticked);
        expectIdentical(legacy_ff, legacy_ticked);
    }
}

TEST(Determinism, FastForwardActuallySkipsCycles)
{
    // Guard against the invariant passing vacuously: on a memory-bound
    // app the base design must spend most of its time quiescent, and
    // the ticked run must agree on the final cycle count anyway.
    const RunResult r = runSystem(DesignConfig::base(), true);
    EXPECT_GT(r.breakdown.data_stall + r.breakdown.idle,
              r.breakdown.active);
}

TEST(Determinism, RepeatedRunsAreIdentical)
{
    const RunResult a = runSystem(DesignConfig::caba(), true);
    const RunResult b = runSystem(DesignConfig::caba(), true);
    expectIdentical(a, b);
}

} // namespace
} // namespace caba
