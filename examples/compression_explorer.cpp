/**
 * @file
 * Compression explorer: run each algorithm over each synthetic data
 * profile and print compressed sizes, burst counts, and the chosen
 * encodings — a direct view of the tradeoffs behind Section 6.3. Also
 * reproduces the paper's Figure 5 walkthrough on a PVC-style line.
 *
 * Usage: ./compression_explorer [lines_per_profile]
 */
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/table.h"
#include "compress/bdi.h"
#include "compress/registry.h"
#include "workloads/data_profile.h"

using namespace caba;

int
main(int argc, char **argv)
{
    const int samples = argc > 1 ? std::atoi(argv[1]) : 2000;

    std::printf("Per-profile compressed size (bytes, avg over %d lines of "
                "%dB)\n\n", samples, kLineSize);
    const DataProfile profiles[] = {
        DataProfile::Zeros,  DataProfile::Pointer, DataProfile::SmallInt,
        DataProfile::Fp32,   DataProfile::Text,    DataProfile::Sparse,
        DataProfile::Index,  DataProfile::Random};
    const Algorithm algos[] = {Algorithm::Bdi, Algorithm::Fpc,
                               Algorithm::CPack, Algorithm::BestOfAll};

    Table t({"profile", "BDI", "FPC", "C-Pack", "BestOfAll"});
    std::uint8_t line[kLineSize];
    for (DataProfile p : profiles) {
        std::vector<std::string> row = {dataProfileName(p)};
        for (Algorithm a : algos) {
            const Codec &codec = getCodec(a);
            std::uint64_t bytes = 0;
            for (int i = 0; i < samples; ++i) {
                generateProfileLine(p, 7, static_cast<Addr>(i) * kLineSize,
                                    line);
                bytes += static_cast<std::uint64_t>(
                    codec.compress(line).size());
            }
            row.push_back(Table::num(
                static_cast<double>(bytes) / samples, 1));
        }
        t.addRow(row);
    }
    std::printf("%s\n", t.render().c_str());

    // ---- Figure 5 walkthrough ----
    std::printf("Figure 5 walkthrough (PVC-style base+delta line):\n");
    std::uint64_t vals[kLineSize / 8];
    for (int i = 0; i < kLineSize / 8; ++i) {
        vals[i] = (i % 2 == 0)
            ? static_cast<std::uint64_t>(i) * 16
            : 0x80001d000ull + static_cast<std::uint64_t>(i) * 8;
    }
    std::memcpy(line, vals, kLineSize);
    const CompressedLine cl = getCodec(Algorithm::Bdi).compress(line);
    std::printf("  %dB line -> %dB (encoding B8D1=%d actual=%d), "
                "%d DRAM burst(s), saved %d bytes\n",
                kLineSize, cl.size(),
                static_cast<int>(BdiEncoding::B8D1), cl.encoding,
                cl.bursts(), kLineSize - cl.size());

    std::uint8_t out[kLineSize];
    getCodec(Algorithm::Bdi).decompress(cl, out);
    std::printf("  round-trip: %s\n",
                std::memcmp(line, out, kLineSize) == 0 ? "exact" : "BROKEN");
    return 0;
}
