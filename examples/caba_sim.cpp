/**
 * @file
 * caba_sim — command-line front end for the simulator, in the spirit of
 * a GPGPU-Sim run script: pick an app, a design, an algorithm and a few
 * hardware knobs, get the full statistics dump.
 *
 * Usage:
 *   caba_sim [--app NAME] [--design base|hw-mem|hw|caba|ideal]
 *            [--algo bdi|fpc|cpack|best] [--bw SCALE] [--scale F]
 *            [--md-kb N] [--l1-tags N] [--l2-tags N] [--verify]
 *            [--memoize] [--prefetch] [--stats] [--list]
 */
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/env.h"
#include "common/table.h"
#include "harness/runner.h"

using namespace caba;

namespace {

[[noreturn]] void
usage()
{
    std::printf(
        "usage: caba_sim [options]\n"
        "  --app NAME      application (default PVC); --list to see all\n"
        "  --design D      base | hw-mem | hw | caba | ideal\n"
        "  --algo A        bdi | fpc | cpack | best (default bdi)\n"
        "  --bw F          off-chip bandwidth scale (default 1.0)\n"
        "  --scale F       loop-trip multiplier (default 1.0)\n"
        "  --md-kb N       MD cache capacity in KB (default 8)\n"
        "  --warps N       cap resident warps per SM (default: occupancy)\n"
        "  --l1-tags N     L1 compressed-cache tag factor (default 1)\n"
        "  --l2-tags N     L2 compressed-cache tag factor (default 1)\n"
        "  --verify        round-trip-check every compressed line\n"
        "  --memoize       enable Section 7.1 memoization assist warps\n"
        "  --prefetch      enable Section 7.2 prefetch assist warps\n"
        "  --stats         dump every raw counter\n"
        "  --list          list the application pool and exit\n"
        "  --help-env      list every CABA_* environment variable and exit\n");
    std::exit(1);
}

Algorithm
parseAlgo(const std::string &s)
{
    if (s == "bdi") return Algorithm::Bdi;
    if (s == "fpc") return Algorithm::Fpc;
    if (s == "cpack") return Algorithm::CPack;
    if (s == "best") return Algorithm::BestOfAll;
    usage();
}

} // namespace

int
main(int argc, char **argv)
{
    std::string app_name = "PVC";
    std::string design_name = "caba";
    Algorithm algo = Algorithm::Bdi;
    ExperimentOptions opts;
    int l1_tags = 1, l2_tags = 1;
    bool dump_stats = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                usage();
            return argv[++i];
        };
        if (arg == "--app") app_name = next();
        else if (arg == "--design") design_name = next();
        else if (arg == "--algo") algo = parseAlgo(next());
        else if (arg == "--bw") opts.bw_scale = std::atof(next().c_str());
        else if (arg == "--scale") opts.scale = std::atof(next().c_str());
        else if (arg == "--md-kb")
            opts.md_cache_kb = std::atoi(next().c_str());
        else if (arg == "--warps")
            opts.max_warps = std::atoi(next().c_str());
        else if (arg == "--l1-tags") l1_tags = std::atoi(next().c_str());
        else if (arg == "--l2-tags") l2_tags = std::atoi(next().c_str());
        else if (arg == "--verify") opts.verify = true;
        else if (arg == "--memoize") opts.extras.memoize = true;
        else if (arg == "--prefetch") opts.extras.prefetch = true;
        else if (arg == "--stats") dump_stats = true;
        else if (arg == "--list") {
            Table t({"app", "suite", "bound", "in Fig1", "in study"});
            for (const AppDescriptor &a : allApps()) {
                t.addRow({a.name, a.suite,
                          a.memory_bound ? "memory" : "compute",
                          a.in_fig1 ? "yes" : "no",
                          a.in_compression ? "yes" : "no"});
            }
            std::printf("%s", t.render().c_str());
            return 0;
        } else if (arg == "--help-env") {
            env::printHelp(stdout);
            return 0;
        } else {
            usage();
        }
    }

    DesignConfig design;
    if (design_name == "base") design = DesignConfig::base();
    else if (design_name == "hw-mem") design = DesignConfig::hwMem(algo);
    else if (design_name == "hw") design = DesignConfig::hw(algo);
    else if (design_name == "caba") design = DesignConfig::caba(algo);
    else if (design_name == "ideal") design = DesignConfig::ideal(algo);
    else usage();
    design.l1_tag_factor = l1_tags;
    design.l2_tag_factor = l2_tags;

    const AppDescriptor &app = findApp(app_name);
    if (app.memo_hit_rate > 0.0 && opts.extras.memoize)
        opts.extras.memo_hit_rate = app.memo_hit_rate;

    printSystemConfig(opts);
    std::printf("Running %s under %s...\n\n", app.name.c_str(),
                design.name.c_str());
    const RunResult r = runApp(app, design, opts);

    Table t({"metric", "value"});
    t.addRow({"cycles", std::to_string(r.cycles)});
    t.addRow({"instructions", std::to_string(r.instructions)});
    t.addRow({"IPC", Table::num(r.ipc)});
    t.addRow({"DRAM BW utilization", Table::pct(r.bw_utilization)});
    t.addRow({"compression ratio", Table::num(r.compression_ratio)});
    t.addRow({"MD cache hit rate", Table::pct(r.md_hit_rate)});
    t.addRow({"energy (mJ)", Table::num(r.energy.total)});
    t.addRow({"avg power (W)", Table::num(r.energy.watts(r.cycles))});
    const auto tot = static_cast<double>(r.breakdown.total());
    t.addRow({"active cycles", Table::pct(r.breakdown.active / tot)});
    t.addRow({"memory stalls", Table::pct(r.breakdown.mem_stall / tot)});
    t.addRow({"compute stalls", Table::pct(r.breakdown.comp_stall / tot)});
    t.addRow({"data-dep stalls", Table::pct(r.breakdown.data_stall / tot)});
    t.addRow({"idle cycles", Table::pct(r.breakdown.idle / tot)});
    std::printf("%s", t.render().c_str());

    if (dump_stats) {
        std::printf("\nRaw counters:\n");
        for (const auto &[k, v] : r.stats.all())
            std::printf("  %-42s %llu\n", k.c_str(),
                        static_cast<unsigned long long>(v));
    }
    return 0;
}
