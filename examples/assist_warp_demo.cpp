/**
 * @file
 * Assist-warp anatomy: peek inside the CABA machinery. Shows (1) the
 * subroutines the Assist Warp Store synthesizes for each algorithm and
 * encoding (Section 4.1.2), (2) a single-SM simulation with live AWC
 * statistics, and (3) the Section 7 use cases (memoization and
 * prefetching) enabled on one app each.
 */
#include <cstdio>

#include "caba/aws.h"
#include "common/table.h"
#include "compress/bdi.h"
#include "harness/runner.h"
#include "workloads/data_profile.h"

using namespace caba;

int
main()
{
    // ---- 1. What lives in the Assist Warp Store ----
    std::printf("Assist Warp Store contents (SR.ID -> subroutine)\n\n");
    AssistWarpStore aws({6, 20});
    std::uint8_t line[kLineSize];

    Table t({"subroutine", "instructions", "ALU ops", "mem ops"});
    for (Algorithm a : {Algorithm::Bdi, Algorithm::Fpc, Algorithm::CPack}) {
        const Codec &codec = getCodec(a);
        generateProfileLine(DataProfile::SmallInt, 3, 0, line);
        const CompressedLine cl = codec.compress(line);
        const auto &dec = aws.decompressRoutine(codec, cl);
        const auto &cmp = aws.compressRoutine(codec);
        auto count = [](const std::vector<AssistInstr> &code, bool mem) {
            int n = 0;
            for (const AssistInstr &i : code)
                n += i.is_mem == mem;
            return n;
        };
        t.addRow({"decompress " + codec.name(),
                  std::to_string(dec.size()),
                  std::to_string(count(dec, false)),
                  std::to_string(count(dec, true))});
        t.addRow({"compress " + codec.name(),
                  std::to_string(cmp.size()),
                  std::to_string(count(cmp, false)),
                  std::to_string(count(cmp, true))});
    }
    const auto &memo = aws.memoizeRoutine();
    const auto &pf = aws.prefetchRoutine();
    t.addRow({"memoize probe", std::to_string(memo.size()), "", ""});
    t.addRow({"stride prefetch", std::to_string(pf.size()), "", ""});
    std::printf("%s\n", t.render().c_str());
    std::printf("AWS footprint: %d subroutines, %d instructions total\n\n",
                aws.numSubroutines(), aws.storedInstructions());

    // ---- 2. AWC behaviour during a CABA-BDI run ----
    ExperimentOptions opts;
    const AppDescriptor &app = findApp("PVC");
    const RunResult r = runApp(app, DesignConfig::caba(), opts);
    std::printf("CABA-BDI on %s: AWC activity\n", app.name.c_str());
    std::printf("  triggers:            %lu (high: %lu, low: %lu)\n",
                (unsigned long)r.stats.get("awc_triggers"),
                (unsigned long)r.stats.get("awc_triggers_high"),
                (unsigned long)r.stats.get("awc_triggers_low"));
    std::printf("  decompression warps: %lu\n",
                (unsigned long)r.stats.get("sm_caba_decompressions"));
    std::printf("  compression warps:   %lu\n",
                (unsigned long)r.stats.get("sm_caba_compressions"));
    std::printf("  assist instructions: %lu (%.1f%% of all issues)\n",
                (unsigned long)r.stats.get("sm_assist_instructions"),
                100.0 * r.stats.get("sm_assist_instructions") /
                    (r.instructions +
                     r.stats.get("sm_assist_instructions")));
    std::printf("  stores compressed:   %lu (buffer overflows: %lu)\n\n",
                (unsigned long)r.stats.get("sm_stores_sent_compressed"),
                (unsigned long)r.stats.get("sm_store_buffer_overflows"));

    // ---- 3. Other uses of the framework (Section 7) ----
    const AppDescriptor &sfu_app = findApp("NN");
    const RunResult plain = runApp(sfu_app, DesignConfig::base(), opts);
    ExperimentOptions memo_opts = opts;
    memo_opts.extras.memoize = true;
    memo_opts.extras.memo_hit_rate = sfu_app.memo_hit_rate;
    const RunResult memod = runApp(sfu_app, DesignConfig::base(), memo_opts);
    std::printf("Memoization on %s: %.2fx speedup (%lu LUT hits)\n",
                sfu_app.name.c_str(),
                static_cast<double>(plain.cycles) /
                    static_cast<double>(memod.cycles),
                (unsigned long)memod.stats.get("sm_memo_hits"));

    const AppDescriptor &pf_app = findApp("hs");
    const RunResult nopf = runApp(pf_app, DesignConfig::base(), opts);
    ExperimentOptions pf_opts = opts;
    pf_opts.extras.prefetch = true;
    const RunResult pfd = runApp(pf_app, DesignConfig::base(), pf_opts);
    std::printf("Prefetching on %s: %.2fx speedup (%lu prefetches)\n",
                pf_app.name.c_str(),
                static_cast<double>(nopf.cycles) /
                    static_cast<double>(pfd.cycles),
                (unsigned long)pfd.stats.get("sm_prefetches_issued"));
    return 0;
}
