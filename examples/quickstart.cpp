/**
 * @file
 * Quickstart: simulate one bandwidth-bound application (PVC, the paper's
 * Figure 5 example app) on the baseline GPU and on CABA-BDI, and print
 * the headline numbers — speedup, bandwidth utilization, compression
 * ratio, and energy.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */
#include <cstdio>

#include "common/table.h"
#include "harness/runner.h"

using namespace caba;

int
main()
{
    ExperimentOptions opts;
    opts.scale = 0.5;
    printSystemConfig(opts);

    const AppDescriptor &app = findApp("PVC");
    std::printf("Application: %s (%s suite, %s)\n\n", app.name.c_str(),
                app.suite.c_str(),
                app.memory_bound ? "memory-bound" : "compute-bound");

    const RunResult base = runApp(app, DesignConfig::base(), opts);
    const RunResult caba = runApp(app, DesignConfig::caba(), opts);

    Table t({"metric", "Base", "CABA-BDI"});
    t.addRow({"cycles", std::to_string(base.cycles),
              std::to_string(caba.cycles)});
    t.addRow({"IPC", Table::num(base.ipc), Table::num(caba.ipc)});
    t.addRow({"DRAM BW utilization", Table::pct(base.bw_utilization),
              Table::pct(caba.bw_utilization)});
    t.addRow({"compression ratio", Table::num(base.compression_ratio),
              Table::num(caba.compression_ratio)});
    t.addRow({"energy (mJ)", Table::num(base.energy.total),
              Table::num(caba.energy.total)});
    t.addRow({"assist instructions", "0",
              std::to_string(caba.stats.get("sm_assist_instructions"))});
    std::printf("%s\n", t.render().c_str());

    std::printf("Speedup of CABA-BDI over Base: %.2fx\n",
                static_cast<double>(base.cycles) /
                    static_cast<double>(caba.cycles));
    return 0;
}
