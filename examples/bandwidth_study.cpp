/**
 * @file
 * Bandwidth study: pick an application (default PVC) and sweep it over
 * the five designs at three off-chip bandwidths, printing the speedup
 * matrix — a miniature of Figures 7 and 12 for one app.
 *
 * Usage: ./bandwidth_study [app-name]
 */
#include <cstdio>
#include <string>

#include "common/table.h"
#include "harness/runner.h"

using namespace caba;

int
main(int argc, char **argv)
{
    const std::string name = argc > 1 ? argv[1] : "PVC";
    const AppDescriptor &app = findApp(name);

    ExperimentOptions opts;
    printSystemConfig(opts);
    std::printf("Bandwidth study for %s (%s)\n\n", app.name.c_str(),
                app.memory_bound ? "memory-bound" : "compute-bound");

    const DesignConfig designs[] = {
        DesignConfig::base(), DesignConfig::hwMem(), DesignConfig::hw(),
        DesignConfig::caba(), DesignConfig::ideal()};
    const double bw[] = {0.5, 1.0, 2.0};

    // Baseline: 1x Base.
    ExperimentOptions base_opts = opts;
    const RunResult base = runApp(app, DesignConfig::base(), base_opts);

    Table t({"design", "0.5x BW", "1x BW", "2x BW"});
    for (const DesignConfig &d : designs) {
        std::vector<std::string> row = {d.name};
        for (double b : bw) {
            ExperimentOptions o = opts;
            o.bw_scale = b;
            const RunResult r = runApp(app, d, o);
            row.push_back(Table::num(static_cast<double>(base.cycles) /
                                     static_cast<double>(r.cycles)));
        }
        t.addRow(row);
    }
    std::printf("%s\n(speedup over 1x-bandwidth Base)\n", t.render().c_str());
    return 0;
}
